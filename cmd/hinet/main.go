// Command hinet is the toolbox CLI over the library: generate a
// synthetic corpus, run an algorithm, print the resulting rankings,
// clusters or statistics. Every subcommand is deterministic under
// -seed.
//
// Subcommands:
//
//	rankclus   cluster+rank DBLP venues (RankClus)
//	netclus    net-clusters over the DBLP star network (NetClus)
//	pagerank   PageRank / HITS on a synthetic web graph
//	scan       SCAN structural clustering of a planted partition
//	stats      network measurements of generator models
//	truth      truth discovery on conflicting claims
//	pathsim    top-k peer search on a DBLP meta-path (-path A-P-V-P-A)
//	dbnet      relational DB → information network conversion demo
//	serve      online HTTP query server (snapshots, result cache, batched top-k)
//	ingest     stream JSONL deltas into a corpus or a running server
//	loadgen    deterministic load generator, trace record/replay, capacity sweep
//
// Unknown subcommands print usage and exit with status 2.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"hinet/internal/cluster"
	"hinet/internal/core"
	"hinet/internal/dblp"
	"hinet/internal/eval"
	"hinet/internal/hin"
	"hinet/internal/ingest"
	"hinet/internal/netclus"
	"hinet/internal/netgen"
	"hinet/internal/netstat"
	"hinet/internal/pathsim"
	"hinet/internal/rank"
	"hinet/internal/relational"
	"hinet/internal/scan"
	"hinet/internal/serve"
	"hinet/internal/stats"
	"hinet/internal/truth"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	seed := fs.Int64("seed", 1, "RNG seed")
	k := fs.Int("k", 4, "clusters")
	topN := fs.Int("top", 5, "top items to print")
	addr := fs.String("addr", ":8080", "serve: listen address (\":0\" picks a free port)")
	workers := fs.Int("workers", 0, "serve: sparse pool worker cap (0 = GOMAXPROCS)")
	cacheCap := fs.Int("cache", 4096, "serve: result cache entries (-1 disables)")
	window := fs.Duration("batch-window", 0, "serve: extra wait to widen top-k batches")
	papers := fs.Int("papers", 0, "serve: corpus size in papers (0 = library default)")
	pprofFlag := fs.Bool("pprof", false, "serve: expose net/http/pprof under /debug/pprof/")
	shards := fs.Int("shards", 0, "serve/loadgen: scatter-gather serving tier over N in-process shards (0/1 = unsharded)")
	shardPolicy := fs.String("shard-policy", "", "serve/loadgen: shard routing policy (round-robin|least-loaded|key-affinity)")
	defaultTimeout := fs.Duration("default-timeout", 0, "serve: per-request deadline when the client sends no ?timeout_ms (0 = none)")
	maxConcurrent := fs.Int("max-concurrent", 0, "serve: admission ceiling for heavy queries (0 = library default)")
	admissionFloor := fs.Int("admission-floor", 0, "serve: lowest concurrency the adaptive limiter may reach (0 = default)")
	sloTarget := fs.Duration("slo-target", 0, "serve: admitted-query p99 target driving the adaptive limiter (0 = default 150ms)")
	controlInterval := fs.Duration("control-interval", 0, "serve: admission controller tick (0 = default 100ms, negative disables)")
	pathSpec := fs.String("path", "A-P-V-P-A", "pathsim: symmetric meta-path over the DBLP schema (e.g. A-P-A)")
	emit := fs.Int("emit", 0, "ingest: emit N sample paper-arrival deltas as JSONL to stdout and exit")
	file := fs.String("file", "", "ingest: JSONL delta file to apply (\"-\" reads stdin)")
	server := fs.String("server", "", "ingest/loadgen: target a running hinet serve (e.g. http://localhost:8080)")
	refresh := fs.Bool("refresh-models", false, "ingest: ask the server to recompute clustering models")
	arrival := fs.String("arrival", "poisson", "loadgen: arrival process (poisson|closed|bursty)")
	rate := fs.Float64("rate", 200, "loadgen: open-loop mean arrivals/s")
	duration := fs.Duration("duration", 10*time.Second, "loadgen: schedule horizon")
	concurrency := fs.Int("concurrency", 0, "loadgen: closed-loop workers (0 = open-loop from offsets)")
	requests := fs.Int("requests", 0, "loadgen: closed-loop request count (0 = rate x duration)")
	mix := fs.String("mix", "", "loadgen: cohort weights, e.g. pathsim=60,rank=20,clusters=5,ingest=5,stats=10")
	zipf := fs.Float64("zipf", 1.1, "loadgen: key-popularity skew exponent (s > 1)")
	lgPaths := fs.String("paths", "", "loadgen: comma-separated pathsim path= variants (empty entry = prebuilt index)")
	record := fs.String("record", "", "loadgen: run sequentially and record status+digests to FILE")
	replay := fs.String("replay", "", "loadgen: replay a recorded trace FILE with digest checks")
	out := fs.String("out", "", "loadgen: write the JSON report (schema hinet-serve/1) to FILE")
	sweep := fs.Bool("sweep", false, "loadgen: stepped-rate saturation sweep; report the SLO knee")
	sweepSteps := fs.Int("sweep-steps", 5, "loadgen: max sweep steps (rate doubles per step)")
	stepDuration := fs.Duration("step-duration", 5*time.Second, "loadgen: duration of each sweep step")
	sloP99 := fs.Duration("slo-p99", 0, "loadgen: p99 latency SLO (0 = default 250ms)")
	sloErrors := fs.Float64("slo-errors", 0, "loadgen: max error-rate SLO in [0,1] (0 = default 0.01)")
	strict := fs.Bool("strict", false, "loadgen: exit nonzero on any error, mismatch or empty run")
	honorRetryAfter := fs.Bool("honor-retry-after", false, "loadgen: closed-loop workers back off per 503 Retry-After hints")
	scheduleOnly := fs.String("schedule-only", "", "loadgen: write the generated schedule to FILE and exit")
	_ = fs.Parse(os.Args[2:])

	switch cmd {
	case "rankclus":
		runRankClus(*seed, *k, *topN)
	case "netclus":
		runNetClus(*seed, *k, *topN)
	case "pagerank":
		runPageRank(*seed, *topN)
	case "scan":
		runSCAN(*seed)
	case "stats":
		runStats(*seed)
	case "truth":
		runTruth(*seed)
	case "pathsim":
		runPathSim(*seed, *topN, *pathSpec)
	case "dbnet":
		runDBNet(*seed)
	case "serve":
		runServe(serveFlags{
			seed: *seed, k: *k, addr: *addr, workers: *workers,
			cacheCap: *cacheCap, window: *window, papers: *papers,
			pprof: *pprofFlag, defaultTimeout: *defaultTimeout,
			maxConcurrent: *maxConcurrent, admissionFloor: *admissionFloor,
			sloTarget: *sloTarget, controlInterval: *controlInterval,
			shards: *shards, shardPolicy: *shardPolicy,
		})
	case "ingest":
		runIngest(*seed, *emit, *file, *server, *refresh, *papers)
	case "loadgen":
		runLoadgen(loadgenFlags{
			seed: *seed, k: *k, papers: *papers, workers: *workers,
			cacheCap: *cacheCap, window: *window, server: *server,
			arrival: *arrival, rate: *rate, duration: *duration,
			concurrency: *concurrency, requests: *requests, mix: *mix,
			zipf: *zipf, paths: *lgPaths, record: *record, replay: *replay,
			out: *out, sweep: *sweep, sweepSteps: *sweepSteps,
			stepDuration: *stepDuration, sloP99: *sloP99, sloErrors: *sloErrors,
			strict: *strict, scheduleOnly: *scheduleOnly, honorRetryAfter: *honorRetryAfter,
			shards: *shards, shardPolicy: *shardPolicy,
		})
	default:
		fmt.Fprintf(os.Stderr, "hinet: unknown subcommand %q\n", cmd)
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage: hinet <subcommand> [-seed N] [-k K] [-top N]

subcommands:
  rankclus   cluster+rank DBLP venues (RankClus)
  netclus    net-clusters over the DBLP star network (NetClus)
  pagerank   PageRank / HITS on a synthetic web graph
  scan       SCAN structural clustering of a planted partition
  stats      network measurements of generator models
  truth      truth discovery on conflicting claims
  pathsim    top-k peer search on a DBLP meta-path [-path A-P-V-P-A]
  dbnet      relational DB -> information network conversion demo
  serve      online HTTP query server (snapshots, result cache, batched top-k)
             [-addr A] [-workers N] [-cache N] [-batch-window D] [-papers N] [-pprof]
             [-default-timeout D] [-max-concurrent N] [-admission-floor N]
             [-slo-target D] [-control-interval D]
             [-shards N] [-shard-policy round-robin|least-loaded|key-affinity]
  ingest     stream JSONL deltas into a corpus or a running server
             [-emit N] [-file F|-] [-server URL] [-refresh-models] [-papers N]
  loadgen    deterministic load generator, trace record/replay, capacity sweep
             [-arrival poisson|closed|bursty] [-rate R] [-duration D] [-mix SPEC]
             [-record F | -replay F | -schedule-only F] [-sweep] [-out F] [-strict]
             [-honor-retry-after] [-shards N] [-shard-policy P]
`)
}

// runIngest has three modes, matched to the incremental-ingestion
// walkthrough in docs/OPERATIONS.md:
//
//	-emit N              print N sample paper-arrival deltas (JSONL)
//	-file F              apply a JSONL delta file to a local corpus
//	-file F -server URL  POST the batch to a running `hinet serve`
//
// Emission and local application are deterministic under -seed, and
// emitted batches reference objects by name, so they apply cleanly to
// any server built from the same seed/config.
func runIngest(seed int64, emit int, file, server string, refresh bool, papers int) {
	cfg := dblp.Config{}
	if papers > 0 {
		cfg.Papers = papers
	}
	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "hinet ingest: %v\n", err)
		os.Exit(1)
	}
	if emit > 0 {
		c := dblp.Generate(stats.NewRNG(seed), cfg)
		if err := ingest.WriteJSONL(os.Stdout, ingest.SamplePapers(c, stats.NewRNG(seed+1000), emit)); err != nil {
			fail(err)
		}
		return
	}
	if file == "" {
		fail(fmt.Errorf("need -emit N or -file F (see -h)"))
	}
	in := os.Stdin
	if file != "-" {
		f, err := os.Open(file)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		in = f
	}
	deltas, err := ingest.ParseJSONL(in)
	if err != nil {
		fail(err)
	}
	if server != "" {
		body, err := json.Marshal(map[string]any{"deltas": deltas, "refresh_models": refresh})
		if err != nil {
			fail(err)
		}
		client := &http.Client{Timeout: 60 * time.Second}
		resp, err := client.Post(strings.TrimRight(server, "/")+"/v1/ingest", "application/json", bytes.NewReader(body))
		if err != nil {
			fail(err)
		}
		defer resp.Body.Close()
		out, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		if resp.StatusCode != http.StatusOK {
			fail(fmt.Errorf("server returned %s: %s", resp.Status, strings.TrimSpace(string(out))))
		}
		fmt.Printf("applied %d deltas: %s\n", len(deltas), strings.TrimSpace(string(out)))
		return
	}
	// Local mode: apply to a freshly generated corpus and report what
	// changed, including the incremental-path timing.
	c := dblp.Generate(stats.NewRNG(seed), cfg)
	apvpa := hin.MetaPath{dblp.TypeAuthor, dblp.TypePaper, dblp.TypeVenue, dblp.TypePaper, dblp.TypeAuthor}
	c.Net.CommutingMatrix(apvpa) // warm the caches the merge path keeps current
	before := time.Now()
	sum, err := ingest.Apply(c.Net, deltas, ingest.Options{})
	if err != nil {
		fail(err)
	}
	apply := time.Since(before)
	before = time.Now()
	c.Net.CommutingMatrix(apvpa)
	fmt.Printf("applied %d deltas in %s (+%s incremental APVPA refresh)\n",
		len(deltas), apply.Round(time.Microsecond), time.Since(before).Round(time.Microsecond))
	fmt.Printf("  nodes +%d/-%d  edges +%d/-%d  relations touched %d\n",
		sum.NodesAdded, sum.NodesRemoved, sum.EdgesAdded, sum.EdgesRemoved, sum.Relations)
	for _, t := range c.Net.Types() {
		fmt.Printf("  %-8s %d objects\n", t, c.Net.Count(t))
	}
}

// serveFlags carries the serve-specific flag values out of main's
// shared FlagSet.
type serveFlags struct {
	seed            int64
	k               int
	addr            string
	workers         int
	cacheCap        int
	window          time.Duration
	papers          int
	pprof           bool
	defaultTimeout  time.Duration
	maxConcurrent   int
	admissionFloor  int
	sloTarget       time.Duration
	controlInterval time.Duration
	shards          int
	shardPolicy     string
}

func runServe(f serveFlags) {
	if _, err := cluster.NewPolicy(f.shardPolicy); err != nil {
		fmt.Fprintf(os.Stderr, "hinet serve: %v\n", err)
		os.Exit(2)
	}
	opts := serve.Options{
		Addr:            f.addr,
		Seed:            f.seed,
		Models:          serve.ModelConfig{K: f.k},
		CacheCapacity:   f.cacheCap,
		BatchWindow:     f.window,
		Workers:         f.workers,
		Pprof:           f.pprof,
		DefaultTimeout:  f.defaultTimeout,
		MaxConcurrent:   f.maxConcurrent,
		AdmissionFloor:  f.admissionFloor,
		SLOTargetP99:    f.sloTarget,
		ControlInterval: f.controlInterval,
		Shards:          f.shards,
		ShardPolicy:     f.shardPolicy,
	}
	if f.papers > 0 {
		opts.Models.Corpus.Papers = f.papers
	}
	seed := f.seed
	fmt.Printf("building snapshot (seed %d)...\n", seed)
	s := serve.New(opts)
	snap := s.Snapshot()
	fmt.Printf("snapshot epoch %d built in %s (%d authors, pathsim nnz %d)\n",
		snap.Epoch, snap.BuildTime.Round(time.Millisecond),
		snap.PathSim.Dim(), snap.PathSim.NNZ())
	if c := s.Coordinator(); c != nil {
		fmt.Printf("sharded tier: %d shards, policy %s, partition %v (skew %.2f)\n",
			c.Shards(), c.PolicyName(), c.Partition().Bounds, c.Skew())
	}
	bound, err := s.Start()
	if err != nil {
		fmt.Fprintf(os.Stderr, "hinet serve: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("listening on http://%s (try /healthz, /v1/pathsim/topk?id=0&k=5)\n", bound)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("shutting down...")
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "hinet serve: shutdown: %v\n", err)
		os.Exit(1)
	}
}

func runRankClus(seed int64, k, topN int) {
	c := dblp.Generate(stats.NewRNG(seed), dblp.Config{})
	b := c.VenueAuthorBipartite()
	m := core.Run(stats.NewRNG(seed+1), b, core.Options{K: k, Method: core.AuthorityRanking, Restarts: 3})
	fmt.Printf("RankClus on %d venues x %d authors: NMI vs ground truth = %.3f\n",
		c.Net.Count(dblp.TypeVenue), c.Net.Count(dblp.TypeAuthor), eval.NMI(c.VenueArea, m.Assign))
	for cl := 0; cl < m.K; cl++ {
		fmt.Printf("cluster %d:\n  venues:", cl)
		for _, v := range m.TopX(cl, topN) {
			fmt.Printf(" %s(%.3f)", c.Net.Name(dblp.TypeVenue, v), m.RankX[cl][v])
		}
		fmt.Printf("\n  authors:")
		for _, a := range m.TopY(cl, topN) {
			fmt.Printf(" %s(%.4f)", c.Net.Name(dblp.TypeAuthor, a), m.RankY[cl][a])
		}
		fmt.Println()
	}
}

func runNetClus(seed int64, k, topN int) {
	c := dblp.Generate(stats.NewRNG(seed), dblp.Config{})
	m := netclus.Run(stats.NewRNG(seed+1), c.Star(), netclus.Options{K: k, Restarts: 2})
	fmt.Printf("NetClus on %d papers: paper NMI = %.3f, venue NMI = %.3f\n",
		c.Net.Count(dblp.TypePaper),
		eval.NMI(c.PaperArea, m.AssignCenter),
		eval.NMI(c.VenueArea, m.AssignAttr(1)))
	types := []struct {
		idx  int
		name hin.Type
	}{{0, dblp.TypeAuthor}, {1, dblp.TypeVenue}, {2, dblp.TypeTerm}}
	for cl := 0; cl < m.K; cl++ {
		fmt.Printf("net-cluster %d:\n", cl)
		for _, t := range types {
			fmt.Printf("  top %s:", t.name)
			for _, o := range m.TopAttr(t.idx, cl, topN) {
				fmt.Printf(" %s", c.Net.Name(t.name, o))
			}
			fmt.Println()
		}
	}
}

func runPageRank(seed int64, topN int) {
	g := netgen.BarabasiAlbert(stats.NewRNG(seed), 2000, 3)
	adj := g.Adjacency()
	pr := rank.PageRank(adj, rank.Options{})
	ht := rank.HITS(adj, rank.Options{})
	fmt.Printf("BA graph n=%d m=%d: PageRank converged in %d iters, HITS in %d\n",
		g.N(), g.M(), pr.Iterations, ht.Iterations)
	fmt.Print("top PageRank nodes:")
	for _, v := range pr.TopK(topN) {
		fmt.Printf(" %d(%.4f)", v, pr.Scores[v])
	}
	fmt.Println()
}

func runSCAN(seed int64) {
	g, truthL := netgen.PlantedPartition(stats.NewRNG(seed), 3, 50, 0.4, 0.02)
	res := scan.Run(g, scan.Options{Epsilon: 0.5, Mu: 3})
	var pt, pp []int
	hubs, outliers := 0, 0
	for v := range truthL {
		switch res.Role[v] {
		case scan.RoleMember:
			pt = append(pt, truthL[v])
			pp = append(pp, res.Cluster[v])
		case scan.RoleHub:
			hubs++
		case scan.RoleOutlier:
			outliers++
		}
	}
	fmt.Printf("SCAN: %d clusters, %d hubs, %d outliers, member NMI = %.3f\n",
		res.Clusters, hubs, outliers, eval.NMI(pt, pp))
}

func runStats(seed int64) {
	for _, m := range []struct {
		name string
		g    func() *netstat.Summary
	}{
		{"BarabasiAlbert(3000,3)", func() *netstat.Summary {
			s := netstat.Summarize(netgen.BarabasiAlbert(stats.NewRNG(seed), 3000, 3))
			return &s
		}},
		{"ErdosRenyi(3000,p=6/n)", func() *netstat.Summary {
			s := netstat.Summarize(netgen.ErdosRenyi(stats.NewRNG(seed+1), 3000, 6.0/2999))
			return &s
		}},
		{"WattsStrogatz(2000,8,0.1)", func() *netstat.Summary {
			s := netstat.Summarize(netgen.WattsStrogatz(stats.NewRNG(seed+2), 2000, 8, 0.1))
			return &s
		}},
	} {
		s := m.g()
		fmt.Printf("%-28s nodes=%d edges=%d density=%.5f cc=%.3f apl=%.2f alpha=%.2f maxdeg=%d\n",
			m.name, s.Nodes, s.Edges, s.Density, s.ClusteringCoef, s.AvgPathLength, s.PowerLawAlpha, s.MaxDegree)
	}
}

func runTruth(seed int64) {
	s := truth.Synthesize(stats.NewRNG(seed), truth.SynthConfig{})
	r := truth.Run(s.Net, truth.Options{})
	fmt.Printf("TruthFinder: converged=%v iters=%d\n", r.Converged, r.Iterations)
	fmt.Printf("accuracy: TruthFinder=%.3f majority=%.3f\n",
		s.Accuracy(truth.PredictTruth(s.Net, r.Confidence)),
		s.Accuracy(truth.MajorityVote(s.Net)))
}

func runPathSim(seed int64, topN int, spec string) {
	c := dblp.Generate(stats.NewRNG(seed), dblp.Config{})
	path, err := c.Net.ParseMetaPath(spec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hinet pathsim: %v\n", err)
		os.Exit(1)
	}
	if plan, err := c.Net.PathEngine().Plan(pathStrings(path)); err == nil {
		fmt.Printf("plan: %s\n", plan)
	}
	ix, err := pathsim.NewIndexE(c.Net, path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hinet pathsim: %v\n", err)
		os.Exit(1)
	}
	// Query the busiest object of the path's endpoint type.
	endpoint := path[0]
	rel := c.Net.Relation(endpoint, path[1])
	deg := make([]float64, c.Net.Count(endpoint))
	for o := 0; o < rel.Rows(); o++ {
		deg[o] = rel.RowSum(o)
	}
	q := stats.ArgMax(deg)
	fmt.Printf("PathSim %s peers of %s:\n", path.String(), c.Net.Name(endpoint, q))
	for _, p := range ix.TopK(q, topN) {
		fmt.Printf("  %-28s %.4f\n", c.Net.Name(endpoint, p.ID), p.Score)
	}
}

func pathStrings(p hin.MetaPath) []string {
	out := make([]string, len(p))
	for i, t := range p {
		out[i] = string(t)
	}
	return out
}

func runDBNet(seed int64) {
	s := relational.SyntheticCustomers(stats.NewRNG(seed), relational.SynthConfig{Customers: 100})
	n := s.DB.Network(relational.NetworkOptions{CategoricalAsObjects: []string{"branch.region", "transaction.kind"}})
	fmt.Println("relational schema -> information network:")
	for _, t := range n.Types() {
		fmt.Printf("  type %-18s %d objects\n", t, n.Count(t))
	}
	fmt.Println("schema edges:")
	for _, e := range n.SchemaEdges() {
		fmt.Printf("  %s -- %s\n", e[0], e[1])
	}
}
