package main

import "testing"

func TestLinkRe(t *testing.T) {
	cases := []struct {
		line string
		want []string
	}{
		{"see [docs](docs/OPERATIONS.md) and [api](https://x.test/a)", []string{"docs/OPERATIONS.md", "https://x.test/a"}},
		{"![diagram](img/arch.png \"alt\")", []string{"img/arch.png"}},
		{"no links here", nil},
		{"[anchor](#section) [rel](../README.md#quickstart)", []string{"#section", "../README.md#quickstart"}},
	}
	for _, tc := range cases {
		var got []string
		for _, m := range linkRe.FindAllStringSubmatch(tc.line, -1) {
			got = append(got, m[1])
		}
		if len(got) != len(tc.want) {
			t.Fatalf("%q: got %v want %v", tc.line, got, tc.want)
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Fatalf("%q: got %v want %v", tc.line, got, tc.want)
			}
		}
	}
}

func TestSkip(t *testing.T) {
	for target, want := range map[string]bool{
		"https://example.com": true,
		"http://example.com":  true,
		"mailto:a@b.c":        true,
		"#anchor":             true,
		"docs/OPERATIONS.md":  false,
		"../README.md#x":      false,
	} {
		if skip(target) != want {
			t.Errorf("skip(%q) = %v, want %v", target, !want, want)
		}
	}
}
