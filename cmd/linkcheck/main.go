// Command linkcheck validates the relative links in the repository's
// markdown files so the docs cannot rot silently: every [text](target)
// and ![alt](target) whose target is a local path must point at a file
// or directory that exists. External links (http/https/mailto) and
// pure in-page anchors (#section) are skipped — CI has no network, and
// anchor slugs are renderer-specific; missing *files* are the rot this
// tool is after.
//
// Usage:
//
//	go run ./cmd/linkcheck README.md docs examples
//
// Arguments are markdown files or directories (walked recursively for
// *.md). Relative targets resolve against the file that contains them;
// a target's #fragment and ?query are ignored. Exit status 1 lists
// every broken link as file:line.
package main

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// linkRe matches inline markdown links and images: [text](target) and
// ![alt](target). Reference-style definitions ([id]: target) are rare
// in this repo and intentionally out of scope.
var linkRe = regexp.MustCompile(`!?\[[^\]]*\]\(([^)\s]+)(?:\s+"[^"]*")?\)`)

func main() {
	args := os.Args[1:]
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: linkcheck <file.md|dir> ...")
		os.Exit(2)
	}
	var files []string
	for _, a := range args {
		st, err := os.Stat(a)
		if err != nil {
			fmt.Fprintf(os.Stderr, "linkcheck: %v\n", err)
			os.Exit(2)
		}
		if !st.IsDir() {
			files = append(files, a)
			continue
		}
		err = filepath.WalkDir(a, func(p string, d fs.DirEntry, err error) error {
			if err == nil && !d.IsDir() && strings.HasSuffix(p, ".md") {
				files = append(files, p)
			}
			return err
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "linkcheck: %v\n", err)
			os.Exit(2)
		}
	}
	broken := 0
	checked := 0
	for _, f := range files {
		b, err := os.ReadFile(f)
		if err != nil {
			fmt.Fprintf(os.Stderr, "linkcheck: %v\n", err)
			os.Exit(2)
		}
		for i, line := range strings.Split(string(b), "\n") {
			for _, m := range linkRe.FindAllStringSubmatch(line, -1) {
				target := m[1]
				if skip(target) {
					continue
				}
				checked++
				// Strip fragment/query; resolve against the file's dir.
				if j := strings.IndexAny(target, "#?"); j >= 0 {
					target = target[:j]
				}
				if target == "" {
					continue
				}
				resolved := filepath.Join(filepath.Dir(f), target)
				if _, err := os.Stat(resolved); err != nil {
					fmt.Printf("%s:%d: broken link %q (resolved %s)\n", f, i+1, m[1], resolved)
					broken++
				}
			}
		}
	}
	fmt.Printf("linkcheck: %d files, %d local links checked, %d broken\n", len(files), checked, broken)
	if broken > 0 {
		os.Exit(1)
	}
}

// skip reports whether the target is outside this tool's scope:
// external schemes and pure in-page anchors.
func skip(target string) bool {
	return strings.HasPrefix(target, "http://") ||
		strings.HasPrefix(target, "https://") ||
		strings.HasPrefix(target, "mailto:") ||
		strings.HasPrefix(target, "#")
}
