// Command benchjson converts `go test -bench` text output into the
// repository's pinned benchmark JSON (BENCH_PR4.json at the repo root,
// and the CI bench artifact): per-benchmark medians of ns/op, B/op and
// allocs/op across -count repetitions, plus any custom b.ReportMetric
// units, with the run's goos/goarch/cpu context.
//
// Usage:
//
//	go test -run xxx -bench <pinned set> -benchmem -count=5 . | go run ./cmd/benchjson > BENCH_PR4.json
//
// Reading from a file also works: `go run ./cmd/benchjson bench.txt`.
// The output is deterministic for a given input (benchmarks sorted by
// name, metric keys sorted by encoding/json), so committed snapshots
// diff cleanly between runs.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"regexp"
	"slices"
	"strconv"
	"strings"
)

// result is one benchmark's aggregated row in the output file.
type result struct {
	Name        string             `json:"name"`
	Runs        int                `json:"runs"`
	Iterations  int64              `json:"iterations"` // median per-run b.N
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  *float64           `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64           `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// file is the top-level output document.
type file struct {
	Schema     string            `json:"schema"`
	Context    map[string]string `json:"context,omitempty"`
	Benchmarks []result          `json:"benchmarks"`
}

// sample is one parsed benchmark output line.
type sample struct {
	iterations int64
	metrics    map[string]float64 // unit → value, e.g. "ns/op" → 123.4
}

// procSuffix strips the trailing -GOMAXPROCS tag go test appends to
// benchmark names on multi-proc hosts (absent when GOMAXPROCS=1), so
// runs from different machines aggregate under one name.
var procSuffix = regexp.MustCompile(`-\d+$`)

func parse(r io.Reader) (map[string][]sample, map[string]string, []string, error) {
	samples := make(map[string][]sample)
	context := make(map[string]string)
	var order []string
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "" || line == "PASS" || strings.HasPrefix(line, "ok ") ||
			strings.HasPrefix(line, "FAIL") || strings.HasPrefix(line, "---"):
			continue
		case strings.HasPrefix(line, "goos:"), strings.HasPrefix(line, "goarch:"),
			strings.HasPrefix(line, "pkg:"), strings.HasPrefix(line, "cpu:"):
			key, val, _ := strings.Cut(line, ":")
			context[key] = strings.TrimSpace(val)
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		fields := strings.Fields(line)
		// Name, iterations, then (value, unit) pairs.
		if len(fields) < 4 || (len(fields)-2)%2 != 0 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		s := sample{iterations: iters, metrics: make(map[string]float64, (len(fields)-2)/2)}
		bad := false
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				bad = true
				break
			}
			s.metrics[fields[i+1]] = v
		}
		if bad {
			continue
		}
		name := procSuffix.ReplaceAllString(fields[0], "")
		if _, seen := samples[name]; !seen {
			order = append(order, name)
		}
		samples[name] = append(samples[name], s)
	}
	return samples, context, order, sc.Err()
}

func median(xs []float64) float64 {
	s := slices.Clone(xs)
	slices.Sort(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

func aggregate(samples map[string][]sample, order []string) []result {
	out := make([]result, 0, len(order))
	for _, name := range order {
		runs := samples[name]
		byUnit := make(map[string][]float64)
		var iters []float64
		for _, s := range runs {
			iters = append(iters, float64(s.iterations))
			for unit, v := range s.metrics {
				byUnit[unit] = append(byUnit[unit], v)
			}
		}
		res := result{Name: name, Runs: len(runs), Iterations: int64(median(iters))}
		for unit, vals := range byUnit {
			m := median(vals)
			switch unit {
			case "ns/op":
				res.NsPerOp = m
			case "B/op":
				v := m
				res.BytesPerOp = &v
			case "allocs/op":
				v := m
				res.AllocsPerOp = &v
			default:
				if res.Metrics == nil {
					res.Metrics = make(map[string]float64)
				}
				res.Metrics[unit] = m
			}
		}
		out = append(out, res)
	}
	slices.SortFunc(out, func(a, b result) int { return strings.Compare(a.Name, b.Name) })
	return out
}

func run(in io.Reader, out io.Writer) error {
	samples, context, order, err := parse(in)
	if err != nil {
		return err
	}
	if len(samples) == 0 {
		return fmt.Errorf("no benchmark lines found in input")
	}
	doc := file{Schema: "hinet-bench/1", Context: context, Benchmarks: aggregate(samples, order)}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

func main() {
	in := io.Reader(os.Stdin)
	if len(os.Args) > 1 {
		f, err := os.Open(os.Args[1])
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}
	if err := run(in, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
