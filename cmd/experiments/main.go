// Command experiments runs every reproduction experiment indexed in
// DESIGN.md (E1–E16 plus ablations) and prints the paper-style tables.
// EXPERIMENTS.md records a captured run of this binary.
//
// Usage:
//
//	experiments [-seed N] [-only E2,E10]
package main

import (
	"flag"
	"fmt"
	"strings"
	"time"

	"hinet/internal/experiments"
)

type experiment struct {
	id    string
	title string
	run   func(seed int64) []experiments.Row
}

func main() {
	seed := flag.Int64("seed", 1, "base RNG seed")
	only := flag.String("only", "", "comma-separated experiment ids to run (default all)")
	flag.Parse()

	all := []experiment{
		{"E1", "RankClus DBLP case study (EDBT'09 Tables 5-7)", experiments.E1RankClusCaseStudy},
		{"E2", "RankClus accuracy vs baselines (EDBT'09 Table 4)", experiments.E2Accuracy},
		{"E3", "RankClus vs SimRank scalability (EDBT'09 Figs 6-8)", func(s int64) []experiments.Row {
			return experiments.E3Scale(s, []int{100, 200, 400})
		}},
		{"E4", "NetClus clustering accuracy (KDD'09 Table 3)", experiments.E4NetClusAccuracy},
		{"E5", "NetClus conditional ranking (KDD'09 Tables 1-2)", experiments.E5NetClusRanking},
		{"E6", "PageRank and HITS on a web-like graph (tutorial 2b.ii)", func(s int64) []experiments.Row {
			return experiments.E6PageRankHITS(s, 3000)
		}},
		{"E7", "SimRank vs co-citation (KDD'02 sec 5)", experiments.E7SimRank},
		{"E8", "SCAN communities, hubs, outliers (KDD'07)", experiments.E8SCAN},
		{"E9", "Network statistics: power law, small world, densification", experiments.E9NetStats},
		{"E10", "TruthFinder veracity analysis (TKDE'08)", experiments.E10TruthFinder},
		{"E11", "DISTINCT object distinction (ICDE'07 Table 2)", experiments.E11Distinct},
		{"E12", "PathSim peer search (tutorial 7b)", experiments.E12PathSim},
		{"E13", "CrossMine cross-relational classification (TKDE'06)", experiments.E13CrossMine},
		{"E14", "CrossClus user-guided clustering (DMKD'07)", experiments.E14CrossClus},
		{"E15", "Information-network OLAP (iNextCube VLDB'09)", experiments.E15OLAP},
		{"E16", "Heterogeneous network classification (tutorial 5b-c)", experiments.E16Classify},
		{"A1", "Ablation: LinkClus low-rank vs SimRank (tutorial 4a)", experiments.AblationLinkClus},
		{"A2", "Ablation: RankClus smoothing sweep", experiments.AblationRankClusSmoothing},
		{"A3", "Ablation: SCAN epsilon sweep", experiments.AblationSCANEpsilon},
	}

	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.TrimSpace(id)] = true
		}
	}
	for _, ex := range all {
		if len(want) > 0 && !want[ex.id] {
			continue
		}
		fmt.Printf("== %s: %s\n", ex.id, ex.title)
		t0 := time.Now()
		rows := ex.run(*seed)
		for _, r := range rows {
			fmt.Println("   " + r.Format())
		}
		fmt.Printf("   (%.2fs)\n\n", time.Since(t0).Seconds())
	}
}
