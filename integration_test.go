package hinet_test

import (
	"math"
	"testing"

	"hinet/internal/classify"
	"hinet/internal/core"
	"hinet/internal/dblp"
	"hinet/internal/eval"
	"hinet/internal/hin"
	"hinet/internal/netclus"
	"hinet/internal/pathsim"
	"hinet/internal/rank"
	"hinet/internal/relational"
	"hinet/internal/stats"
)

// Integration tests: cross-module pipelines the paper's narrative walks
// through — database → network → mining — asserting that independent
// systems agree with each other, not only with the planted ground truth.

func smallCorpus(seed int64) *dblp.Corpus {
	return dblp.Generate(stats.NewRNG(seed), dblp.Config{
		VenuesPerArea:  3,
		AuthorsPerArea: 60,
		TermsPerArea:   40,
		SharedTerms:    20,
		Papers:         600,
	})
}

// RankClus on the bipartite view and NetClus on the star view should
// discover essentially the same venue communities.
func TestRankClusAndNetClusAgreeOnVenues(t *testing.T) {
	c := smallCorpus(1)
	rc := core.Run(stats.NewRNG(2), c.VenueAuthorBipartite(), core.Options{K: c.Areas(), Restarts: 3})
	nc := netclus.Run(stats.NewRNG(3), c.Star(), netclus.Options{K: c.Areas(), Restarts: 3})
	agreement := eval.NMI(rc.Assign, nc.AssignAttr(1))
	if agreement < 0.6 {
		t.Errorf("RankClus and NetClus venue partitions disagree: NMI = %.3f", agreement)
	}
}

// Label propagation seeded with NetClus's own output should reproduce
// NetClus's paper labels — the two mechanisms see the same structure.
func TestNetClusLabelsSurvivePropagation(t *testing.T) {
	c := smallCorpus(4)
	nc := netclus.Run(stats.NewRNG(5), c.Star(), netclus.Options{K: c.Areas(), Restarts: 2})
	rng := stats.NewRNG(6)
	seeds := classify.SampleSeeds(rng, dblp.TypePaper, nc.AssignCenter, c.Areas(), 10)
	scores := classify.Propagate(c.Net, c.Areas(), seeds, classify.Options{})
	pred := classify.Labels(scores[dblp.TypePaper])
	if agree := eval.NMI(nc.AssignCenter, pred); agree < 0.6 {
		t.Errorf("propagation from NetClus seeds diverged: NMI = %.3f", agree)
	}
}

// PathSim peers of an author should predominantly share the author's
// RankClus-assigned community (venue cluster of their home venues).
func TestPathSimPeersShareArea(t *testing.T) {
	c := smallCorpus(7)
	ix := pathsim.NewIndex(c.Net, hin.MetaPath{
		dblp.TypeAuthor, dblp.TypePaper, dblp.TypeVenue, dblp.TypePaper, dblp.TypeAuthor,
	})
	pa := c.Net.Relation(dblp.TypePaper, dblp.TypeAuthor)
	deg := make([]float64, c.Net.Count(dblp.TypeAuthor))
	for p := 0; p < pa.Rows(); p++ {
		pa.Row(p, func(a int, v float64) { deg[a] += v })
	}
	hits, total := 0, 0
	for _, q := range stats.TopK(deg, 8) {
		for _, peer := range ix.TopK(q, 5) {
			total++
			if c.AuthorArea[peer.ID] == c.AuthorArea[q] {
				hits++
			}
		}
	}
	if frac := float64(hits) / float64(total); frac < 0.7 {
		t.Errorf("PathSim peer area coherence = %.3f", frac)
	}
}

// The relational-to-network conversion must preserve join structure:
// PageRank over the converted network should rank branch hubs (many
// customers) above leaf transactions.
func TestDBNetworkPageRankFindsHubs(t *testing.T) {
	s := relational.SyntheticCustomers(stats.NewRNG(8), relational.SynthConfig{Customers: 200})
	net := s.DB.Network(relational.NetworkOptions{})
	g, offset := net.Homogeneous()
	pr := rank.PageRank(g.Adjacency(), rank.Options{})
	// Mean branch rank must exceed mean transaction rank: branches
	// aggregate many customers, transactions are degree-1 leaves.
	branchBase := offset[hin.Type("branch")]
	transBase := offset[hin.Type("transaction")]
	nBranch := net.Count(hin.Type("branch"))
	nTrans := net.Count(hin.Type("transaction"))
	var mb, mt float64
	for i := 0; i < nBranch; i++ {
		mb += pr.Scores[branchBase+i]
	}
	for i := 0; i < nTrans; i++ {
		mt += pr.Scores[transBase+i]
	}
	mb /= float64(nBranch)
	mt /= float64(nTrans)
	if mb <= mt {
		t.Errorf("branch mean rank %.5f should exceed transaction mean %.5f", mb, mt)
	}
}

// RankClus posteriors are a valid soft refinement of its hard labels:
// argmax of the posterior should usually match the hard assignment.
func TestRankClusPosteriorConsistency(t *testing.T) {
	c := smallCorpus(9)
	m := core.Run(stats.NewRNG(10), c.VenueAuthorBipartite(), core.Options{K: c.Areas(), Restarts: 3})
	agree := 0
	for x, p := range m.Posterior {
		if stats.ArgMax(p) == m.Assign[x] {
			agree++
		}
	}
	if frac := float64(agree) / float64(len(m.Assign)); frac < 0.7 {
		t.Errorf("posterior argmax matches hard assignment only %.2f of the time", frac)
	}
}

// Full-pipeline determinism: the same seeds must reproduce the same
// models end to end.
func TestEndToEndDeterminism(t *testing.T) {
	run := func() ([]int, float64) {
		c := smallCorpus(11)
		m := core.Run(stats.NewRNG(12), c.VenueAuthorBipartite(), core.Options{K: c.Areas(), Restarts: 2})
		nc := netclus.Run(stats.NewRNG(13), c.Star(), netclus.Options{K: c.Areas()})
		return m.Assign, nc.LogLikelihood
	}
	a1, ll1 := run()
	a2, ll2 := run()
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatal("RankClus assignment not reproducible")
		}
	}
	if math.Abs(ll1-ll2) > 1e-9 {
		t.Fatal("NetClus likelihood not reproducible")
	}
}
